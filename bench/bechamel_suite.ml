(* Wall-clock microbenchmarks (Bechamel) of the primitive operations
   the simulated systems are built from. These measure the *library's*
   own cost — useful for regression-tracking this repository — and are
   separate from the simulated-time experiment harness. *)

open Bechamel
open Toolkit

let pte_roundtrip () =
  let p = Vmem.Pte.make_local ~frame:1234 ~writable:true in
  let p = Vmem.Pte.set_dirty (Vmem.Pte.set_accessed p) in
  ignore (Vmem.Pte.frame p);
  ignore (Vmem.Pte.tag p)

let page_table_update =
  let pt = Vmem.Page_table.create () in
  let i = ref 0 in
  fun () ->
    incr i;
    let vpn = !i land 0xFFFF in
    Vmem.Page_table.set pt vpn (Vmem.Pte.make_remote ());
    ignore (Vmem.Page_table.get pt vpn)

let heap_churn =
  let h = Sim.Heap.create ~cmp:Int.compare in
  let i = ref 0 in
  fun () ->
    incr i;
    Sim.Heap.push h ((!i * 7919) land 0xFFFF);
    if Sim.Heap.length h > 256 then ignore (Sim.Heap.pop h)

let histogram_add =
  let h = Sim.Histogram.create () in
  let i = ref 0 in
  fun () ->
    incr i;
    Sim.Histogram.add h (!i land 0xFFFFF)

let rng_next =
  let r = Sim.Rng.create 1 in
  fun () -> ignore (Sim.Rng.next64 r)

let readahead_decide =
  let p = Dilos.Prefetcher.readahead () in
  fun () ->
    ignore (p.Dilos.Prefetcher.decide ~fault_vpn:100 ~hit_ratio:0.8 ~history:(fun () -> [||]))

let trend_decide =
  let p = Dilos.Prefetcher.trend_based () in
  let hist = Array.init 32 (fun i -> 1000 - (i * 3)) in
  fun () ->
    ignore (p.Dilos.Prefetcher.decide ~fault_vpn:1000 ~hit_ratio:0.8 ~history:(fun () -> hist))

let snappy_block =
  let rng = Sim.Rng.create 3 in
  let data = Apps.Snappy.generate rng 4096 in
  fun () -> ignore (Apps.Snappy.compress_bytes data)

let clamp_segments () =
  ignore
    (Dilos.Guide.clamp_segments
       [ (0, 16); (64, 16); (256, 16); (1024, 16); (2048, 16); (4000, 16) ])

let tests =
  Test.make_grouped ~name:"dilos" ~fmt:"%s/%s"
    [
      Test.make ~name:"pte_roundtrip" (Staged.stage pte_roundtrip);
      Test.make ~name:"page_table_set_get" (Staged.stage page_table_update);
      Test.make ~name:"event_heap_push_pop" (Staged.stage heap_churn);
      Test.make ~name:"histogram_add" (Staged.stage histogram_add);
      Test.make ~name:"rng_next64" (Staged.stage rng_next);
      Test.make ~name:"readahead_decide" (Staged.stage readahead_decide);
      Test.make ~name:"trend_decide" (Staged.stage trend_decide);
      Test.make ~name:"snappy_compress_4k" (Staged.stage snappy_block);
      Test.make ~name:"clamp_segments" (Staged.stage clamp_segments);
    ]

let run () =
  print_endline "\n== Bechamel: wall-clock cost of primitive operations ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-32s %10.1f ns/op\n" name ns) rows
