(* Perf-trajectory regression gate (`bench/main.exe -- --regress FILE`).

   Reads a committed BENCH_<tag>.json, re-runs the same targets fresh,
   and enforces the trajectory's contract:

   - [sim_ms] and every counter recorded in the baseline must match
     EXACTLY — simulated time and counters are deterministic outputs,
     so any drift is a behaviour change, not noise. Counters that only
     exist in the fresh run are allowed (newer code adds metrics; the
     next milestone capture picks them up).
   - Tracked histograms must match on count/p50/p99 exactly and on the
     recorded mean at the file's own precision.
   - [wall_s] may move, but not regress past WALL_SLACK x the recorded
     baseline — the "did we make the simulator 3x slower" tripwire,
     tolerant of CI machine variance.

   Exit codes: 0 trajectory holds, 1 drift, 2 unreadable baseline. *)

module J = Trace.Json

let wall_slack = 3.0

(* Wall-clock floor: baselines captured on fast machines can record
   a few milliseconds; 3x of that is not a meaningful budget. *)
let wall_floor_s = 0.5

let drifts : string list ref = ref []

let drift fmt =
  Printf.ksprintf (fun s -> drifts := s :: !drifts) fmt

let die fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "regress: %s\n" s;
      exit 2)
    fmt

let str = function Some (J.Str s) -> Some s | _ -> None
let num = function Some (J.Num f) -> Some f | _ -> None
let obj = function Some (J.Obj o) -> Some o | _ -> None

let check_counters ~name baseline (fresh : (string * int) list) =
  List.iter
    (fun (k, v) ->
      match num (Some v) with
      | None -> die "%s: counter %S is not a number" name k
      | Some base -> (
          let base = int_of_float base in
          match List.assoc_opt k fresh with
          | None -> drift "%s: counter %s disappeared (baseline %d)" name k base
          | Some cur when cur <> base ->
              drift "%s: counter %s moved %d -> %d" name k base cur
          | Some _ -> ()))
    baseline

let check_histos ~name baseline (fresh : Perf.histo_summary list) =
  List.iter
    (fun (k, v) ->
      match obj (Some v) with
      | None -> die "%s: histogram %S is not an object" name k
      | Some fields -> (
          match
            List.find_opt (fun h -> h.Perf.h_name = k) fresh
          with
          | None -> drift "%s: histogram %s disappeared" name k
          | Some h ->
              let want field =
                match num (List.assoc_opt field fields) with
                | Some f -> int_of_float f
                | None -> die "%s: histogram %s lacks %s" name k field
              in
              if h.Perf.h_count <> want "count" then
                drift "%s: %s count moved %d -> %d" name k (want "count")
                  h.Perf.h_count;
              if h.Perf.h_p50 <> want "p50_ns" then
                drift "%s: %s p50 moved %d -> %d" name k (want "p50_ns")
                  h.Perf.h_p50;
              if h.Perf.h_p99 <> want "p99_ns" then
                drift "%s: %s p99 moved %d -> %d" name k (want "p99_ns")
                  h.Perf.h_p99;
              (* The file stores mean_ns at %.1f; compare at that
                 precision so parsing noise cannot fire the gate. *)
              let base_mean =
                match num (List.assoc_opt "mean_ns" fields) with
                | Some f -> Printf.sprintf "%.1f" f
                | None -> die "%s: histogram %s lacks mean_ns" name k
              in
              let cur_mean = Printf.sprintf "%.1f" h.Perf.h_mean in
              if base_mean <> cur_mean then
                drift "%s: %s mean moved %s -> %s" name k base_mean cur_mean))
    baseline

let check_experiment v =
  let name =
    match str (J.member "name" v) with
    | Some n -> n
    | None -> die "experiment without a name"
  in
  let target =
    match List.assoc_opt name (Perf.targets @ Perf.paperscale_targets) with
    | Some fn -> fn
    | None ->
        die "baseline names unknown target %S (trajectory file stale?)" name
  in
  Printf.printf "regress %-28s %!" name;
  let fresh = target () in
  (* sim_ms is compared at the file's own %.6f rendering: the value is
     deterministic, only its decimal image is quantized. *)
  (match num (J.member "sim_ms" v) with
  | None -> die "%s: no sim_ms" name
  | Some base ->
      let base_s = Printf.sprintf "%.6f" base in
      let cur_s = Printf.sprintf "%.6f" fresh.Perf.sim_ms in
      if base_s <> cur_s then
        drift "%s: sim_ms moved %s -> %s" name base_s cur_s);
  (match obj (J.member "counters" v) with
  | None -> die "%s: no counters" name
  | Some c -> check_counters ~name c fresh.Perf.counters);
  (match obj (J.member "histograms" v) with
  | None -> die "%s: no histograms" name
  | Some h -> check_histos ~name h fresh.Perf.histos);
  let base_wall =
    match num (J.member "wall_s" v) with
    | None -> die "%s: no wall_s" name
    | Some w -> w
  in
  let budget = Float.max wall_floor_s (base_wall *. wall_slack) in
  if fresh.Perf.wall_s > budget then
    drift "%s: wall regression %.3fs > %.3fs (baseline %.3fs x %.1f)" name
      fresh.Perf.wall_s budget base_wall wall_slack;
  Printf.printf "wall %6.2fs (baseline %6.2fs)  sim %10.2fms\n%!"
    fresh.Perf.wall_s base_wall fresh.Perf.sim_ms

let run ~file =
  let text =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error e -> die "cannot read %s: %s" file e
  in
  let v =
    match J.parse text with
    | Ok v -> v
    | Error msg -> die "%s: bad JSON: %s" file msg
  in
  let experiments =
    match J.member "experiments" v with
    | Some (J.Arr l) -> l
    | Some _ | None -> die "%s: no experiments array" file
  in
  (* Same precondition as the capture path: attribution histograms
     resolve at boot, so the flag must be on before any system boots. *)
  Trace.set_attribution true;
  List.iter check_experiment experiments;
  match List.rev !drifts with
  | [] ->
      Printf.printf "regress: trajectory %s holds (%d experiments)\n" file
        (List.length experiments)
  | ds ->
      List.iter (fun d -> Printf.eprintf "regress: DRIFT %s\n" d) ds;
      exit 1
