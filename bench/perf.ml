(* Wall-clock performance harness (`bench/main.exe --json FILE`).

   Runs a fixed set of full-size experiments, measuring host wall-clock
   seconds around each (boot + workload + teardown) together with the
   run's simulated-time outputs. The JSON it writes is the repo's perf
   trajectory: commit a BENCH_<tag>.json per milestone and compare
   wall_s across commits — the sim_ms / counters columns must not move
   (simulated time is part of the repro's correctness contract), only
   wall_s may. *)

module H = Apps.Harness

type histo_summary = {
  h_name : string;
  h_count : int;
  h_mean : float;
  h_p50 : int;
  h_p99 : int;
}

type result = {
  name : string;
  wall_s : float;
  sim_ms : float;
  counters : (string * int) list;
  histos : histo_summary list;
}

let mb n = n * 1024 * 1024

(* Histograms worth tracking across commits: end-to-end fault latency
   plus the four trace-attribution components (present because
   [run_json] turns attribution on before any system boots). *)
let tracked_histos =
  [
    "fault_ns";
    Trace.attr_kernel;
    Trace.attr_queue;
    Trace.attr_wire;
    Trace.attr_backoff;
    "serve_response_ns";
    "serve_service_ns";
  ]

let histo_summaries stats =
  List.filter_map
    (fun h_name ->
      match Sim.Stats.histogram_opt stats h_name with
      | None -> None
      | Some h when Sim.Histogram.count h = 0 -> None
      | Some h ->
          Some
            {
              h_name;
              h_count = Sim.Histogram.count h;
              h_mean = Sim.Histogram.mean h;
              h_p50 = Sim.Histogram.quantile h 0.5;
              h_p99 = Sim.Histogram.quantile h 0.99;
            })
    tracked_histos

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  {
    name;
    wall_s = wall;
    sim_ms = Sim.Time.to_ms r.H.elapsed;
    counters = Sim.Stats.counters r.H.run_stats;
    histos = histo_summaries r.H.run_stats;
  }

let seq_ws = mb 128

let targets : (string * (unit -> result)) list =
  [
    ( "seqread_dilos_ra",
      fun () ->
        timed "seqread_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(seq_ws / 8)
              (fun ctx -> Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Read))
    );
    ( "seqwrite_dilos_ra",
      fun () ->
        timed "seqwrite_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(seq_ws / 8)
              (fun ctx -> Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Write))
    );
    ( "seqread_fastswap",
      fun () ->
        timed "seqread_fastswap" (fun () ->
            H.run H.Fastswap ~local_mem:(seq_ws / 8) (fun ctx ->
                Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Read)) );
    ( "quicksort_dilos_ra",
      fun () ->
        let n = 2_000_000 in
        timed "quicksort_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(n * 4 / 8)
              (fun ctx -> Apps.Quicksort.run ctx ~n ~seed:42)) );
    ( "dataframe_dilos_ra",
      fun () ->
        let rows = 1_000_000 in
        timed "dataframe_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(rows * 40 / 8)
              (fun ctx ->
                let df = Apps.Dataframe.create ctx ~rows ~seed:17 in
                Apps.Dataframe.run_workload df)) );
    ( "pagerank_dilos_ra",
      fun () ->
        let n = 30_000 and deg = 32 in
        let ws = (n * deg * 4) + (n * 24) in
        timed "pagerank_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8) ~cores:4
              (fun ctx ->
                let g = Apps.Graph.generate ctx ~n ~avg_deg:deg ~seed:23 in
                Apps.Graph.pagerank ctx g ~iters:3 ~threads:4)) );
    ( "redis_get64k_dilos_trend",
      fun () ->
        let keys = 768 in
        timed "redis_get64k_dilos_trend" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Trend_based)
              ~local_mem:(keys * 66_000 / 8) (fun ctx ->
                Apps.Redis_bench.run_get ctx ~keys
                  ~size:(Apps.Redis_bench.Fixed 65536) ~queries:keys ~seed:5))
    );
    ( "serve_zipf_dilos_ra",
      fun () ->
        let keys = 4096 in
        let ws = keys * 4300 in
        (* Offered at ~1.1x a typical DiLOS capacity for this config so
           the tracked response-time histogram exercises the queueing
           regime, not just service time. *)
        timed "serve_zipf_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8)
              (fun ctx ->
                Apps.Serving.run ctx
                  {
                    Apps.Serving.stream =
                      {
                        Workload.Stream.keys;
                        theta = 0.99;
                        read_fraction = 0.95;
                        value_size = Workload.Stream.Fixed 4080;
                        arrival = Workload.Arrival.Poisson;
                        rate_rps = 300_000.;
                        seed = 42;
                      };
                    requests = 30_000;
                    phases = 1;
                    workers = 1;
                  })) );
    ( "redis_lrange_guided",
      fun () ->
        let lists = 1024 and elements = 100_000 and elem = 512 in
        let ws = elements * (elem + 40) in
        timed "redis_lrange_guided" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8)
              (fun ctx ->
                ignore (Apps.Redis_guide.install ctx);
                Apps.Redis_bench.run_lrange ctx ~lists ~elements
                  ~elem_size:elem ~queries:lists ~range:100 ~seed:5)) );
  ]

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~file ~tag results =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"tag\": \"%s\",\n  \"experiments\": [\n" (json_escape tag);
  List.iteri
    (fun i r ->
      p "    {\n      \"name\": \"%s\",\n" (json_escape r.name);
      p "      \"wall_s\": %.3f,\n" r.wall_s;
      p "      \"sim_ms\": %.6f,\n" r.sim_ms;
      p "      \"counters\": {";
      List.iteri
        (fun j (k, v) ->
          p "%s\"%s\": %d" (if j = 0 then "" else ", ") (json_escape k) v)
        r.counters;
      p "},\n      \"histograms\": {";
      List.iteri
        (fun j h ->
          p
            "%s\"%s\": {\"count\": %d, \"mean_ns\": %.1f, \"p50_ns\": %d, \
             \"p99_ns\": %d}"
            (if j = 0 then "" else ", ")
            (json_escape h.h_name) h.h_count h.h_mean h.h_p50 h.h_p99)
        r.histos;
      p "}\n    }%s\n" (if i = List.length results - 1 then "" else ",")
    )
    results;
  p "  ]\n}\n";
  close_out oc

(* Derive the tag from a BENCH_<tag>.json filename, else use the
   basename. *)
let tag_of_file file =
  let base = Filename.remove_extension (Filename.basename file) in
  if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
    String.sub base 6 (String.length base - 6)
  else base

let run_json ~file keys =
  (* Before any boot: the attribution histograms are resolved per
     system at boot time, so flipping this later would miss them. *)
  Trace.set_attribution true;
  let chosen =
    match keys with
    | [] -> targets
    | ks ->
        List.map
          (fun k ->
            match List.assoc_opt k targets with
            | Some fn -> (k, fn)
            | None ->
                Printf.eprintf "unknown bench target %S; targets are:\n" k;
                List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) targets;
                exit 1)
          ks
  in
  let results =
    List.map
      (fun (name, fn) ->
        Printf.printf "bench %-28s %!" name;
        let r = fn () in
        Printf.printf "wall %6.2fs  sim %10.2fms\n%!" r.wall_s r.sim_ms;
        r)
      chosen
  in
  write_json ~file ~tag:(tag_of_file file) results;
  Printf.printf "wrote %s\n" file
