(* Wall-clock performance harness (`bench/main.exe --json FILE`).

   Runs a fixed set of full-size experiments, measuring host wall-clock
   seconds around each (boot + workload + teardown) together with the
   run's simulated-time outputs. The JSON it writes is the repo's perf
   trajectory: commit a BENCH_<tag>.json per milestone and compare
   wall_s across commits — the sim_ms / counters columns must not move
   (simulated time is part of the repro's correctness contract), only
   wall_s may. *)

module H = Apps.Harness

type histo_summary = {
  h_name : string;
  h_count : int;
  h_mean : float;
  h_p50 : int;
  h_p99 : int;
}

type result = {
  name : string;
  wall_s : float;
  sim_ms : float;
  counters : (string * int) list;
  histos : histo_summary list;
}

let mb n = n * 1024 * 1024

(* Histograms worth tracking across commits: end-to-end fault latency
   plus the four trace-attribution components (present because
   [run_json] turns attribution on before any system boots). *)
let tracked_histos =
  [
    "fault_ns";
    Trace.attr_kernel;
    Trace.attr_queue;
    Trace.attr_wire;
    Trace.attr_backoff;
    "serve_response_ns";
    "serve_service_ns";
  ]

let histo_summaries stats =
  List.filter_map
    (fun h_name ->
      match Sim.Stats.histogram_opt stats h_name with
      | None -> None
      | Some h when Sim.Histogram.count h = 0 -> None
      | Some h ->
          Some
            {
              h_name;
              h_count = Sim.Histogram.count h;
              h_mean = Sim.Histogram.mean h;
              h_p50 = Sim.Histogram.quantile h 0.5;
              h_p99 = Sim.Histogram.quantile h 0.99;
            })
    tracked_histos

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let wall = Unix.gettimeofday () -. t0 in
  {
    name;
    wall_s = wall;
    sim_ms = Sim.Time.to_ms r.H.elapsed;
    counters = Sim.Stats.counters r.H.run_stats;
    histos = histo_summaries r.H.run_stats;
  }

let seq_ws = mb 128

let targets : (string * (unit -> result)) list =
  [
    ( "seqread_dilos_ra",
      fun () ->
        timed "seqread_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(seq_ws / 8)
              (fun ctx -> Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Read))
    );
    ( "seqwrite_dilos_ra",
      fun () ->
        timed "seqwrite_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(seq_ws / 8)
              (fun ctx -> Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Write))
    );
    ( "seqread_fastswap",
      fun () ->
        timed "seqread_fastswap" (fun () ->
            H.run H.Fastswap ~local_mem:(seq_ws / 8) (fun ctx ->
                Apps.Seq.run ctx ~size_bytes:seq_ws ~mode:Apps.Seq.Read)) );
    ( "quicksort_dilos_ra",
      fun () ->
        let n = 2_000_000 in
        timed "quicksort_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(n * 4 / 8)
              (fun ctx -> Apps.Quicksort.run ctx ~n ~seed:42)) );
    ( "dataframe_dilos_ra",
      fun () ->
        let rows = 1_000_000 in
        timed "dataframe_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(rows * 40 / 8)
              (fun ctx ->
                let df = Apps.Dataframe.create ctx ~rows ~seed:17 in
                Apps.Dataframe.run_workload df)) );
    ( "pagerank_dilos_ra",
      fun () ->
        let n = 30_000 and deg = 32 in
        let ws = (n * deg * 4) + (n * 24) in
        timed "pagerank_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8) ~cores:4
              (fun ctx ->
                let g = Apps.Graph.generate ctx ~n ~avg_deg:deg ~seed:23 in
                Apps.Graph.pagerank ctx g ~iters:3 ~threads:4)) );
    ( "redis_get64k_dilos_trend",
      fun () ->
        let keys = 768 in
        timed "redis_get64k_dilos_trend" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Trend_based)
              ~local_mem:(keys * 66_000 / 8) (fun ctx ->
                Apps.Redis_bench.run_get ctx ~keys
                  ~size:(Apps.Redis_bench.Fixed 65536) ~queries:keys ~seed:5))
    );
    ( "serve_zipf_dilos_ra",
      fun () ->
        let keys = 4096 in
        let ws = keys * 4300 in
        (* Offered at ~1.1x a typical DiLOS capacity for this config so
           the tracked response-time histogram exercises the queueing
           regime, not just service time. *)
        timed "serve_zipf_dilos_ra" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8)
              (fun ctx ->
                Apps.Serving.run ctx
                  {
                    Apps.Serving.stream =
                      {
                        Workload.Stream.keys;
                        theta = 0.99;
                        read_fraction = 0.95;
                        value_size = Workload.Stream.Fixed 4080;
                        arrival = Workload.Arrival.Poisson;
                        rate_rps = 300_000.;
                        seed = 42;
                      };
                    requests = 30_000;
                    phases = 1;
                    workers = 1;
                  })) );
    ( "redis_lrange_guided",
      fun () ->
        let lists = 1024 and elements = 100_000 and elem = 512 in
        let ws = elements * (elem + 40) in
        timed "redis_lrange_guided" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:(ws / 8)
              (fun ctx ->
                ignore (Apps.Redis_guide.install ctx);
                Apps.Redis_bench.run_lrange ctx ~lists ~elements
                  ~elem_size:elem ~queries:lists ~range:100 ~seed:5)) );
  ]

(* ------------------------------------------------------------------ *)
(* Paper-scale targets (BENCH_paperscale.json).

   The paper's evaluation dims from Apps.Scale: 20 GiB working sets
   against 8 GiB of local DRAM. These take minutes to hours of wall
   clock, so they are NOT part of the default matrix — run them by
   name:

     dune exec bench/main.exe -- --json BENCH_paperscale.json \
       paperscale_dataframe paperscale_quicksort *)

let paper_dims name =
  match Apps.Scale.dims Apps.Scale.Paper name with
  | Some d -> d
  | None -> invalid_arg ("no paper dims for " ^ name)

let paperscale_targets : (string * (unit -> result)) list =
  [
    ( "paperscale_dataframe",
      fun () ->
        let d = paper_dims "dataframe" in
        timed "paperscale_dataframe" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:d.Apps.Scale.local_mem
              (fun ctx ->
                let df = Apps.Dataframe.create ctx ~rows:d.Apps.Scale.scale ~seed:17 in
                Apps.Dataframe.run_workload df)) );
    ( "paperscale_quicksort",
      fun () ->
        let d = paper_dims "quicksort" in
        timed "paperscale_quicksort" (fun () ->
            H.run (H.Dilos Dilos.Kernel.Readahead) ~local_mem:d.Apps.Scale.local_mem
              (fun ctx -> Apps.Quicksort.run ctx ~n:d.Apps.Scale.scale ~seed:42)) );
  ]

(* ------------------------------------------------------------------ *)
(* Allocation-regression smoke (`--alloc-smoke`).

   Two phases, two budgets:

   - fault path: a read-only sweep over a working set 4x local memory
     with prefetch off, so every measured access is a TLB miss plus a
     remote fetch with eviction pressure behind it. The data path
     proper is allocation-free; what remains is fiber machinery (each
     fetch parks the fiber: effect continuations + timer/condvar nodes
     across several sleeps) — ~580 words/fault as of this commit. The
     budget has headroom for scheduler tweaks; a closure or record
     sneaking back into the per-fault path (the pre-Bigbuf engine paid
     several KB/fault in payload copies alone) still fails loudly.

   - hit path: repeated u32 reads of one resident page, all TLB hits.
     This is the tentpole's zero-alloc claim: the only allocation
     allowed is the amortized time-flush sleep (mem_access_ns=1
     against a 10 us pending cap = one sleep per ~10k accesses), so
     anything above half a word per access means boxed addresses or
     closures are back on the access path. (u64 reads are excluded by
     construction: an [int64] crossing the Memif closure boundary is a
     3-word box the language guarantees; int-returning accessors are
     the ones the apps' hot loops use.) *)

let alloc_budget_words_per_fault = 1024.
let alloc_budget_words_per_hit = 0.5

let alloc_smoke () =
  let ws = mb 32 in
  let pages = ws / 4096 in
  let measured = ref None in
  let r =
    H.run (H.Dilos Dilos.Kernel.No_prefetch) ~local_mem:(ws / 4) (fun ctx ->
        let mem = ctx.H.mem ~core:0 in
        let base = mem.Apps.Memif.malloc ws in
        for i = 0 to pages - 1 do
          mem.Apps.Memif.write_u64_at base (i * 4096) (Int64.of_int i)
        done;
        mem.Apps.Memif.flush ();
        (* One warm sweep so every code path has run (lazy init,
           histogram growth) before the measured sweep. *)
        for i = 0 to pages - 1 do
          ignore (mem.Apps.Memif.read_u64_at base (i * 4096))
        done;
        mem.Apps.Memif.flush ();
        let faults0 = Sim.Stats.get ctx.H.stats "major_faults" in
        let words0 = Gc.minor_words () in
        for i = 0 to pages - 1 do
          ignore (mem.Apps.Memif.read_u64_at base (i * 4096))
        done;
        mem.Apps.Memif.flush ();
        let words = Gc.minor_words () -. words0 in
        let faults = Sim.Stats.get ctx.H.stats "major_faults" - faults0 in
        (* Hit phase: one page, re-read; after the first access the
           TLB caches its slab offset. *)
        let hits = 1_000_000 in
        ignore (mem.Apps.Memif.read_u32_at base 0);
        let hw0 = Gc.minor_words () in
        for _ = 1 to hits do
          ignore (mem.Apps.Memif.read_u32_at base 0)
        done;
        let hit_words = Gc.minor_words () -. hw0 in
        mem.Apps.Memif.flush ();
        measured := Some (words, faults, hit_words, hits))
  in
  ignore r;
  match !measured with
  | None ->
      prerr_endline "alloc-smoke: workload did not run";
      exit 1
  | Some (words, faults, hit_words, hits) ->
      if faults < pages / 2 then begin
        Printf.eprintf
          "alloc-smoke: expected a fault per page in the measured sweep, got \
           %d/%d\n"
          faults pages;
        exit 1
      end;
      let per_fault = words /. float_of_int faults in
      let per_hit = hit_words /. float_of_int hits in
      Printf.printf
        "alloc-smoke: %.0f minor words / %d steady-state faults = %.1f \
         words/fault (budget %.0f)\n"
        words faults per_fault alloc_budget_words_per_fault;
      Printf.printf
        "alloc-smoke: %.0f minor words / %d TLB-hit u32 reads = %.4f \
         words/access (budget %.1f)\n"
        hit_words hits per_hit alloc_budget_words_per_hit;
      let ok = ref true in
      if per_fault > alloc_budget_words_per_fault then begin
        Printf.eprintf
          "alloc-smoke: FAIL — fault path allocates %.1f words/fault, budget \
           %.0f\n"
          per_fault alloc_budget_words_per_fault;
        ok := false
      end;
      if per_hit > alloc_budget_words_per_hit then begin
        Printf.eprintf
          "alloc-smoke: FAIL — hit path allocates %.4f words/access, budget \
           %.1f\n"
          per_hit alloc_budget_words_per_hit;
        ok := false
      end;
      if not !ok then exit 1

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~file ~tag results =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"tag\": \"%s\",\n  \"experiments\": [\n" (json_escape tag);
  List.iteri
    (fun i r ->
      p "    {\n      \"name\": \"%s\",\n" (json_escape r.name);
      p "      \"wall_s\": %.3f,\n" r.wall_s;
      p "      \"sim_ms\": %.6f,\n" r.sim_ms;
      p "      \"counters\": {";
      List.iteri
        (fun j (k, v) ->
          p "%s\"%s\": %d" (if j = 0 then "" else ", ") (json_escape k) v)
        r.counters;
      p "},\n      \"histograms\": {";
      List.iteri
        (fun j h ->
          p
            "%s\"%s\": {\"count\": %d, \"mean_ns\": %.1f, \"p50_ns\": %d, \
             \"p99_ns\": %d}"
            (if j = 0 then "" else ", ")
            (json_escape h.h_name) h.h_count h.h_mean h.h_p50 h.h_p99)
        r.histos;
      p "}\n    }%s\n" (if i = List.length results - 1 then "" else ",")
    )
    results;
  p "  ]\n}\n";
  close_out oc

(* Derive the tag from a BENCH_<tag>.json filename, else use the
   basename. *)
let tag_of_file file =
  let base = Filename.remove_extension (Filename.basename file) in
  if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
    String.sub base 6 (String.length base - 6)
  else base

let run_json ~file keys =
  (* Before any boot: the attribution histograms are resolved per
     system at boot time, so flipping this later would miss them. *)
  Trace.set_attribution true;
  let all = targets @ paperscale_targets in
  let chosen =
    match keys with
    | [] -> targets (* paper-scale runs only by explicit name *)
    | ks ->
        List.map
          (fun k ->
            match List.assoc_opt k all with
            | Some fn -> (k, fn)
            | None ->
                Printf.eprintf "unknown bench target %S; targets are:\n" k;
                List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) all;
                exit 1)
          ks
  in
  let results =
    List.map
      (fun (name, fn) ->
        Printf.printf "bench %-28s %!" name;
        let r = fn () in
        Printf.printf "wall %6.2fs  sim %10.2fms\n%!" r.wall_s r.sim_ms;
        r)
      chosen
  in
  write_json ~file ~tag:(tag_of_file file) results;
  Printf.printf "wrote %s\n" file
