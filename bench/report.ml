(* Table rendering + paper-reference annotations for bench output. *)

let line = String.make 78 '-'

let section ~id ~title ~paper =
  Printf.printf "\n%s\n== %s: %s\n" line id title;
  List.iter (fun l -> Printf.printf "   paper: %s\n" l) paper;
  Printf.printf "%s\n" line

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> Int.max w (String.length c)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w c -> Printf.printf " %-*s" (w + 1) c) widths row;
    print_newline ()
  in
  print_row header;
  List.iter
    (fun w -> Printf.printf " %s " (String.make w '-'))
    widths;
  print_newline ();
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
let ms t = Printf.sprintf "%.2f" (Sim.Time.to_ms t)
let i = string_of_int

let ratio a b = if b = 0. then "-" else Printf.sprintf "%.2fx" (a /. b)

let pct_of_best best v =
  if v <= 0. then "-" else Printf.sprintf "%.2fx" (v /. best)
