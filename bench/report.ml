(* Table rendering + paper-reference annotations for bench output. *)

let line = String.make 78 '-'

let section ~id ~title ~paper =
  Printf.printf "\n%s\n== %s: %s\n" line id title;
  List.iter (fun l -> Printf.printf "   paper: %s\n" l) paper;
  Printf.printf "%s\n" line

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w c -> Int.max w (String.length c)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w c -> Printf.printf " %-*s" (w + 1) c) widths row;
    print_newline ()
  in
  print_row header;
  List.iter
    (fun w -> Printf.printf " %s " (String.make w '-'))
    widths;
  print_newline ();
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f0 x = Printf.sprintf "%.0f" x
let ms t = Printf.sprintf "%.2f" (Sim.Time.to_ms t)
let i = string_of_int

let ratio a b = if b = 0. then "-" else Printf.sprintf "%.2fx" (a /. b)

let pct_of_best best v =
  if v <= 0. then "-" else Printf.sprintf "%.2fx" (v /. best)

(* --- Stats-driven reporting helpers ------------------------------- *)

(* Print only the counters that moved between [base] (a
   [Sim.Stats.snapshot] taken earlier in the run) and the stats'
   current state: per-phase counter attribution without resetting the
   stats object mid-run. *)
let phase_delta ~label base stats =
  let moved =
    List.filter
      (fun (_, v) -> v <> 0)
      (Sim.Stats.diff ~base (Sim.Stats.snapshot stats))
  in
  Printf.printf " %s:" label;
  if moved = [] then print_string " (no counters moved)"
  else List.iter (fun (k, v) -> Printf.printf " %s=%+d" k v) moved;
  print_newline ()

(* Full dump — counters plus histogram count/mean/p50/p99 lines. *)
let stats_dump stats = Fmt.pr "%a@." Sim.Stats.pp stats

(* Table row summarising one named histogram, or None if the run never
   recorded it. *)
let histo_row stats ~label name =
  match Sim.Stats.histogram_opt stats name with
  | None -> None
  | Some h when Sim.Histogram.count h = 0 -> None
  | Some h ->
      Some
        [
          label;
          i (Sim.Histogram.count h);
          f2 (Sim.Histogram.mean h /. 1000.);
          f2 (float_of_int (Sim.Histogram.quantile h 0.5) /. 1000.);
          f2 (float_of_int (Sim.Histogram.quantile h 0.99) /. 1000.);
        ]
