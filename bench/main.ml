(* Benchmark entry point.

   Usage:
     dune exec bench/main.exe              # every table and figure
     dune exec bench/main.exe fig7a fig12  # selected experiments
     dune exec bench/main.exe bechamel     # wall-clock primitive costs
     dune exec bench/main.exe list         # what exists
     dune exec bench/main.exe -- --json BENCH_tag.json [target...]
                                           # wall-clock perf harness *)

let list_experiments () =
  print_endline "available experiments:";
  List.iter
    (fun (key, desc, _) -> Printf.printf "  %-8s %s\n" key desc)
    Experiments.all;
  print_endline "  bechamel wall-clock primitive-operation costs";
  print_endline "perf targets (--json FILE [target...]):";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Perf.targets;
  print_endline "paper-scale perf targets (by explicit name only):";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) Perf.paperscale_targets;
  print_endline "  --alloc-smoke   assert the fault path's allocation budget";
  print_endline
    "  --regress FILE  re-run a committed BENCH_*.json and fail on counter \
     drift or wall-clock regression"

let run_one key =
  match List.find_opt (fun (k, _, _) -> k = key) Experiments.all with
  | Some (_, _, fn) ->
      let t0 = Sys.time () in
      fn ();
      Printf.printf "\n (cpu time: %.1fs)\n%!" (Sys.time () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S; try 'list'\n" key;
      exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      print_endline "DiLOS reproduction: regenerating every table and figure.";
      List.iter (fun (k, _, _) -> run_one k) Experiments.all;
      Bechamel_suite.run ()
  | _ :: [ "list" ] -> list_experiments ()
  | _ :: [ "bechamel" ] -> Bechamel_suite.run ()
  | _ :: "--json" :: file :: keys -> Perf.run_json ~file keys
  | _ :: "--regress" :: (_ :: _ as files) ->
      List.iter (fun file -> Regress.run ~file) files
  | _ :: [ "--regress" ] ->
      Printf.eprintf "--regress needs a baseline file (e.g. BENCH_observatory.json)\n";
      exit 1
  | _ :: [ "--alloc-smoke" ] -> Perf.alloc_smoke ()
  | _ :: [ "--json" ] ->
      Printf.eprintf "--json needs an output file (e.g. BENCH_base.json)\n";
      exit 1
  | _ :: keys -> List.iter run_one keys
  | [] -> assert false
