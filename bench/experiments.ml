(* One function per paper table/figure. Workloads are scaled down
   (every page movement is simulated); each section header states the
   paper's qualitative expectation so shape can be compared at a
   glance. EXPERIMENTS.md records the paper-vs-measured summary. *)

module H = Apps.Harness

let mb n = n * 1024 * 1024
let kb n = n * 1024
let fractions_all = [ 0.125; 0.25; 0.5; 1.0 ]
let pct f = Printf.sprintf "%.1f%%" (f *. 100.)

let local_of ws frac =
  Int.max (kb 256) (int_of_float (float_of_int ws *. frac))

let dilos_ra = H.Dilos Dilos.Kernel.Readahead
let dilos_none = H.Dilos Dilos.Kernel.No_prefetch
let dilos_trend = H.Dilos Dilos.Kernel.Trend_based
let dilos_tcp = H.Dilos_tcp Dilos.Kernel.Readahead

(* ------------------------------------------------------------------ *)

let fig2 () =
  Report.section ~id:"Figure 2" ~title:"RDMA latency vs object size (us)"
    ~paper:
      [
        "one-sided ops on CX-5/100GbE: ~2.2us small reads;";
        "a 4KB read costs only ~0.6us more than 128B.";
      ];
  let sizes = [ 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 65536 ] in
  let eng = Sim.Engine.create () in
  let server = Memnode.Server.create ~eng ~size:(Int64.of_int (mb 1)) () in
  let fabric = Memnode.Server.connect server () in
  let qp = Rdma.Fabric.qp fabric ~name:"bench" in
  let rows = ref [] in
  Sim.Engine.spawn eng (fun () ->
      List.iter
        (fun size ->
          let buf = Sim.Bigbuf.create size in
          let t0 = Sim.Engine.now eng in
          Rdma.Qp.read qp ~raddr:0L ~buf ~off:0 ~len:size;
          let rd = Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now eng) t0) in
          let t1 = Sim.Engine.now eng in
          Rdma.Qp.write qp ~raddr:0L ~buf ~off:0 ~len:size;
          let wr = Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now eng) t1) in
          rows := [ string_of_int size; Report.f2 rd; Report.f2 wr ] :: !rows)
        sizes);
  Sim.Engine.run eng;
  Report.table ~header:[ "size(B)"; "read(us)"; "write(us)" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)

let seq_ws = mb 128

let run_seq system ~frac ~mode =
  H.run system ~local_mem:(local_of seq_ws frac) (fun ctx ->
      Apps.Seq.run ctx ~size_bytes:seq_ws ~mode)

let breakdown_row name (st : Sim.Stats.t) =
  let majors = Int.max 1 (Sim.Stats.get st "major_faults") in
  let ph key = float_of_int (Sim.Stats.get st key) /. float_of_int majors /. 1000. in
  let exc = ph "ph_exception_ns" in
  let cache = ph "ph_swapcache_ns" +. ph "ph_pte_ns" in
  let alloc = ph "ph_alloc_ns" in
  let fetch = ph "ph_fetch_ns" in
  let reclaim = ph "ph_reclaim_ns" in
  let other = ph "ph_other_ns" in
  let total = exc +. cache +. alloc +. fetch +. reclaim +. other in
  ( [
      name;
      Report.f2 exc;
      Report.f2 cache;
      Report.f2 alloc;
      Report.f2 fetch;
      Report.f2 reclaim;
      Report.f2 other;
      Report.f2 total;
    ],
    total )

let breakdown_header =
  [ "system"; "exc"; "pte/cache"; "alloc"; "fetch"; "reclaim"; "other"; "total(us)" ]

let fig1 () =
  Report.section ~id:"Figure 1"
    ~title:"Fastswap page-fault latency breakdown (per major fault, us)"
    ~paper:
      [
        "fetch ~46%, reclamation ~29%, exception 0.57us (~9%),";
        "remainder = swap cache + page alloc + other kernel code.";
      ];
  let r = run_seq H.Fastswap ~frac:0.125 ~mode:Apps.Seq.Read in
  let avg, total = breakdown_row "Fastswap (average)" r.H.run_stats in
  (* The paper's "no reclamation" bar: the same fault path when no
     eviction work lands in fault context. *)
  let majors = Int.max 1 (Sim.Stats.get r.H.run_stats "major_faults") in
  let reclaim =
    float_of_int (Sim.Stats.get r.H.run_stats "ph_reclaim_ns")
    /. float_of_int majors /. 1000.
  in
  let no_reclaim =
    match avg with
    | name :: rest ->
        ignore name;
        "Fastswap (no reclamation)"
        :: (List.mapi
              (fun i v ->
                if i = 4 then "0.00"
                else if i = 6 then Report.f2 (total -. reclaim)
                else v)
              rest)
    | [] -> []
  in
  Report.table ~header:breakdown_header [ avg; no_reclaim ];
  Printf.printf "\n fetch share: %.0f%%  reclaim share: %.0f%%  exception share: %.0f%%\n"
    (float_of_int (Sim.Stats.get r.H.run_stats "ph_fetch_ns")
    /. float_of_int majors /. 10. /. total)
    (reclaim /. total *. 100.)
    (0.57 /. total *. 100.)

let fig6 () =
  Report.section ~id:"Figure 6"
    ~title:"DiLOS vs Fastswap fault latency breakdown, prefetch off (us)"
    ~paper:
      [
        "DiLOS reduces fault latency by ~49%: no swap-cache management,";
        "cheap allocation, and zero reclamation in the critical path.";
      ];
  let fs = run_seq H.Fastswap_no_ra ~frac:0.125 ~mode:Apps.Seq.Read in
  let dl = run_seq dilos_none ~frac:0.125 ~mode:Apps.Seq.Read in
  let fs_row, fs_total = breakdown_row "Fastswap" fs.H.run_stats in
  let dl_row, dl_total = breakdown_row "DiLOS" dl.H.run_stats in
  Report.table ~header:breakdown_header [ fs_row; dl_row ];
  Printf.printf "\n DiLOS reduction: %.0f%% (paper: ~49%%)\n"
    ((fs_total -. dl_total) /. fs_total *. 100.)

let table2 () =
  Report.section ~id:"Table 2" ~title:"Sequential read/write throughput (GB/s)"
    ~paper:
      [
        "Fastswap 0.98/0.49; DiLOS no-prefetch 1.24/1.14;";
        "DiLOS readahead 3.74/3.49; trend-based 3.73/3.49.";
      ];
  let systems =
    [
      ("Fastswap", H.Fastswap);
      ("DiLOS no-prefetch", dilos_none);
      ("DiLOS readahead", dilos_ra);
      ("DiLOS trend-based", dilos_trend);
    ]
  in
  let rows =
    List.map
      (fun (name, sys) ->
        let rd = (run_seq sys ~frac:0.125 ~mode:Apps.Seq.Read).H.value in
        let wr = (run_seq sys ~frac:0.125 ~mode:Apps.Seq.Write).H.value in
        [ name; Report.f2 rd.Apps.Seq.gbps; Report.f2 wr.Apps.Seq.gbps ])
      systems
  in
  Report.table ~header:[ "system"; "read GB/s"; "write GB/s" ] rows

let fault_counts_of (st : Sim.Stats.t) ~minor_key =
  let major = Sim.Stats.get st "major_faults" in
  let minor = Sim.Stats.get st minor_key in
  (major, minor)

let table1 () =
  Report.section ~id:"Table 1"
    ~title:"Fastswap fault counts, sequential read (scaled from 20GB)"
    ~paper:[ "major 12.5%, minor 87.5% of 5,242,901 faults on 20GB." ];
  let r = run_seq H.Fastswap ~frac:0.125 ~mode:Apps.Seq.Read in
  let major, minor = fault_counts_of r.H.run_stats ~minor_key:"minor_faults" in
  let total = major + minor in
  Report.table
    ~header:[ "kind"; "count"; "%" ]
    [
      [ "Major page fault"; Report.i major; Report.f1 (100. *. float_of_int major /. float_of_int total) ];
      [ "Minor page fault"; Report.i minor; Report.f1 (100. *. float_of_int minor /. float_of_int total) ];
      [ "Total"; Report.i total; "100.0" ];
    ]

let table3 () =
  Report.section ~id:"Table 3" ~title:"Fault counts during sequential read"
    ~paper:
      [
        "DiLOS no-prefetch: all faults major; with prefetchers, majors drop";
        "to ~12.5% and DiLOS takes ~25% fewer minor faults than Fastswap";
        "(fetch-in-flight waits replace swap-cache minor faults).";
      ];
  let pages = seq_ws / 4096 in
  let row name sys minor_key =
    let r = run_seq sys ~frac:0.125 ~mode:Apps.Seq.Read in
    let major, minor = fault_counts_of r.H.run_stats ~minor_key in
    [ name; Report.i major; Report.i minor; Report.i (major + minor) ]
  in
  Report.table
    ~header:[ "system"; "major"; "minor"; "total" ]
    [
      row "Fastswap" H.Fastswap "minor_faults";
      row "DiLOS no-prefetch" dilos_none "fetch_waits";
      row "DiLOS readahead" dilos_ra "fetch_waits";
      row "DiLOS trend-based" dilos_trend "fetch_waits";
    ];
  Printf.printf "\n (pages in timed pass: %d)\n" pages

(* ------------------------------------------------------------------ *)

let completion_figure ~id ~title ~paper ~ws ~systems ~fractions run =
  Report.section ~id ~title ~paper;
  let rows =
    List.map
      (fun frac ->
        let cells =
          List.map
            (fun (_, sys) ->
              let t = run sys (local_of ws frac) in
              Report.ms t)
            systems
        in
        pct frac :: cells)
      fractions
  in
  Report.table ~header:("local mem" :: List.map fst systems)
    rows

let fig7a () =
  let n = 2_000_000 in
  completion_figure ~id:"Figure 7(a)" ~title:"Quicksort completion time (ms)"
    ~paper:
      [
        "12.5% local: DiLOS up to 1.39x faster than Fastswap;";
        "100->12.5% degradation: DiLOS +12%, Fastswap +39%.";
      ]
    ~ws:(n * 4)
    ~systems:[ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local (fun ctx -> Apps.Quicksort.run ctx ~n ~seed:42))
        .H.value
        .Apps.Quicksort.sort_time)

let fig7b () =
  let n = 1_000_000 in
  (* Working set: the points plus the ring of chunked distance-matrix
     temporaries scikit keeps alive. *)
  let ws = (n * 4) + (8 * 2048 * 10 * 8) in
  completion_figure ~id:"Figure 7(b)" ~title:"K-means completion time (ms)"
    ~paper:[ "12.5% local: DiLOS up to 2.71x faster than Fastswap." ]
    ~ws
    ~systems:[ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local (fun ctx ->
           Apps.Kmeans.run ctx ~n ~k:10 ~iters:3 ~seed:42))
        .H.value
        .Apps.Kmeans.cluster_time)

let snappy_files = 8
let snappy_file_bytes = mb 4
let snappy_ws = snappy_files * snappy_file_bytes * 2 (* input + output *)

let fig7c () =
  completion_figure ~id:"Figure 7(c)" ~title:"Snappy compression time (ms)"
    ~paper:
      [
        "sequential pattern; at 12.5%: AIFM best, DiLOS within 7-9%,";
        "DiLOS-TCP within 17-23%, Fastswap 35-40% slower; at 100%,";
        "AIFM similar or slower (per-deref checks).";
      ]
    ~ws:snappy_ws
    ~systems:
      [
        ("DiLOS(ra)", dilos_ra);
        ("DiLOS-TCP", dilos_tcp);
        ("Fastswap", H.Fastswap);
        ("AIFM", H.Aifm);
      ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local (fun ctx ->
           Apps.Snappy.run_compress ctx ~files:snappy_files
             ~file_bytes:snappy_file_bytes ~seed:7))
        .H.value
        .Apps.Snappy.time)

let fig7d () =
  completion_figure ~id:"Figure 7(d)" ~title:"Snappy decompression time (ms)"
    ~paper:[ "same shape as compression." ] ~ws:snappy_ws
    ~systems:
      [
        ("DiLOS(ra)", dilos_ra);
        ("DiLOS-TCP", dilos_tcp);
        ("Fastswap", H.Fastswap);
        ("AIFM", H.Aifm);
      ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local (fun ctx ->
           Apps.Snappy.run_decompress ctx ~files:snappy_files
             ~file_bytes:snappy_file_bytes ~seed:7))
        .H.value
        .Apps.Snappy.time)

let fig8 () =
  let rows_n = 1_000_000 in
  let ws = rows_n * 40 in
  completion_figure ~id:"Figure 8"
    ~title:"DataFrame NYC-taxi workload completion time (ms)"
    ~paper:
      [
        "at 100%: AIFM 50-83% slower than the others; DiLOS-TCP still 14%";
        "faster than AIFM, DiLOS-RDMA up to 54%; Fastswap's time more than";
        "doubles as memory shrinks while DiLOS/AIFM grow slightly.";
      ]
    ~ws
    ~systems:
      [
        ("DiLOS(ra)", dilos_ra);
        ("DiLOS-TCP", dilos_tcp);
        ("Fastswap", H.Fastswap);
        ("AIFM", H.Aifm);
      ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local (fun ctx ->
           let df = Apps.Dataframe.create ctx ~rows:rows_n ~seed:17 in
           Apps.Dataframe.run_workload df))
        .H.value
        .Apps.Dataframe.total_time)

(* Degree chosen so the PageRank score arrays are a smaller fraction
   of the working set than the 12.5% local budget, as with the
   Twitter graph (488MB of scores in a 17GB working set): the random
   gathers then mostly hit local memory and paging is dominated by
   the edge stream. *)
let gapbs_n = 30_000
let gapbs_deg = 32
let gapbs_ws = (gapbs_n * gapbs_deg * 4) + (gapbs_n * 24)

let fig9a () =
  completion_figure ~id:"Figure 9(a)" ~title:"GAPBS PageRank time, 4 threads (ms)"
    ~paper:
      [
        "at 50-100% local Fastswap can edge out DiLOS (OSv synchronization";
        "overhead); under memory pressure DiLOS wins.";
      ]
    ~ws:gapbs_ws
    ~systems:[ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local ~cores:4 (fun ctx ->
           let g = Apps.Graph.generate ctx ~n:gapbs_n ~avg_deg:gapbs_deg ~seed:23 in
           Apps.Graph.pagerank ctx g ~iters:3 ~threads:4))
        .H.value
        .Apps.Graph.pr_time)

let fig9b () =
  completion_figure ~id:"Figure 9(b)"
    ~title:"GAPBS betweenness centrality time, 4 threads (ms)"
    ~paper:[ "more random than PR; DiLOS up to 76% faster at 12.5%." ]
    ~ws:(gapbs_ws + (gapbs_n * 24 * 4))
    ~systems:[ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]
    ~fractions:fractions_all
    (fun sys local ->
      (H.run sys ~local_mem:local ~cores:4 (fun ctx ->
           let g = Apps.Graph.generate ctx ~n:gapbs_n ~avg_deg:gapbs_deg ~seed:23 in
           Apps.Graph.betweenness ctx g ~sources:3 ~threads:4 ~seed:3))
        .H.value
        .Apps.Graph.bc_time)

(* ------------------------------------------------------------------ *)
(* Redis *)

type redis_sys = Plain of H.system | App_aware

let redis_systems =
  [
    ("Fastswap", Plain H.Fastswap);
    ("DiLOS no-prefetch", Plain dilos_none);
    ("DiLOS readahead", Plain dilos_ra);
    ("DiLOS trend-based", Plain dilos_trend);
    ("DiLOS app-aware", App_aware);
  ]

let redis_fractions = [ 0.125; 0.25; 0.5 ]

let run_redis_sys sys ~local_mem f =
  match sys with
  | Plain s -> H.run s ~local_mem f
  | App_aware ->
      H.run dilos_ra ~local_mem (fun ctx ->
          ignore (Apps.Redis_guide.install ctx);
          f ctx)

let redis_throughput_figure ~id ~title ~paper ~ws run =
  Report.section ~id ~title ~paper;
  let rows =
    List.map
      (fun frac ->
        pct frac
        :: List.map
             (fun (_, sys) ->
               let r = run_redis_sys sys ~local_mem:(local_of ws frac) run in
               Report.f0 r.H.value.Apps.Redis_bench.throughput_rps)
             redis_systems)
      redis_fractions
  in
  Report.table ~header:("local mem" :: List.map fst redis_systems) rows

let fig10a () =
  let keys = 8192 in
  redis_throughput_figure ~id:"Figure 10(a)" ~title:"Redis GET 4KB (req/s)"
    ~paper:
      [
        "4KB objects fit one page: prefetchers barely help;";
        "all DiLOS variants beat Fastswap (1.37-1.52x even w/o prefetch).";
      ]
    ~ws:(keys * 4300)
    (fun ctx ->
      (* 4080 payload + SDS header = exactly one page, matching the
         paper's "the object fits into a single page". *)
      Apps.Redis_bench.run_get ctx ~keys ~size:(Apps.Redis_bench.Fixed 4080)
        ~queries:keys ~seed:5)

let fig10b () =
  let keys = 768 in
  redis_throughput_figure ~id:"Figure 10(b)" ~title:"Redis GET 64KB (req/s)"
    ~paper:
      [
        "large objects span pages: prefetching effective (trend-based up";
        "to +63% over no-prefetch); DiLOS up to 2.5x Fastswap.";
      ]
    ~ws:(keys * 66_000)
    (fun ctx ->
      Apps.Redis_bench.run_get ctx ~keys ~size:(Apps.Redis_bench.Fixed 65536)
        ~queries:keys ~seed:5)

let fig10c () =
  let keys = 1024 in
  redis_throughput_figure ~id:"Figure 10(c)"
    ~title:"Redis GET mixed 4-128KB, FB photo sizes (req/s)"
    ~paper:[ "between the 4KB and 64KB cases; app-aware on par with best." ]
    ~ws:(keys * 44_000)
    (fun ctx ->
      Apps.Redis_bench.run_get ctx ~keys ~size:Apps.Redis_bench.Fb_mixed
        ~queries:keys ~seed:5)

let lrange_lists = 1024
let lrange_elements = 100_000
let lrange_elem = 512
let lrange_ws = lrange_elements * (lrange_elem + 40)

let fig10d () =
  redis_throughput_figure ~id:"Figure 10(d)" ~title:"Redis LRANGE_100 (req/s)"
    ~paper:
      [
        "pointer-chasing quicklists defeat general-purpose prefetchers";
        "(no gain over no-prefetch); the app-aware guide wins by ~62%.";
      ]
    ~ws:lrange_ws
    (fun ctx ->
      Apps.Redis_bench.run_lrange ctx ~lists:lrange_lists
        ~elements:lrange_elements ~elem_size:lrange_elem
        ~queries:lrange_lists ~range:100 ~seed:5)

let table4 () =
  Report.section ~id:"Table 4"
    ~title:"Tail latency, GET(mixed) and LRANGE at 12.5% local (us)"
    ~paper:
      [
        "DiLOS well below Fastswap; prefetchers cut GET tails; only the";
        "app-aware guide cuts LRANGE tails (-18% p99 vs general-purpose).";
        "(absolute values differ from the paper's ms: scaled working set)";
      ];
  let get_ws = 1024 * 44_000 and lr_ws = lrange_ws in
  let rows =
    List.map
      (fun (name, sys) ->
        let g =
          run_redis_sys sys ~local_mem:(local_of get_ws 0.125) (fun ctx ->
              Apps.Redis_bench.run_get ctx ~keys:1024 ~size:Apps.Redis_bench.Fb_mixed
                ~queries:1024 ~seed:5)
        in
        let l =
          run_redis_sys sys ~local_mem:(local_of lr_ws 0.125) (fun ctx ->
              Apps.Redis_bench.run_lrange ctx ~lists:lrange_lists
                ~elements:lrange_elements ~elem_size:lrange_elem
                ~queries:lrange_lists ~range:100 ~seed:5)
        in
        [
          name;
          Report.f0 g.H.value.Apps.Redis_bench.p99_us;
          Report.f0 g.H.value.Apps.Redis_bench.p999_us;
          Report.f0 l.H.value.Apps.Redis_bench.p99_us;
          Report.f0 l.H.value.Apps.Redis_bench.p999_us;
        ])
      redis_systems
  in
  Report.table
    ~header:[ "system"; "GET p99"; "GET p99.9"; "LRANGE p99"; "LRANGE p99.9" ]
    rows

let fig12 () =
  Report.section ~id:"Figure 12"
    ~title:"Bandwidth during DEL then GET, guided paging (MB moved)"
    ~paper:
      [
        "guided allocator reduces bandwidth ~12% during DEL and ~29%";
        "during GET (vector <= 3 segments, only live chunks move).";
      ];
  let keys = 65_536 and value_bytes = 128 in
  let ws = keys * 340 in
  let run sys =
    (H.run sys ~local_mem:(local_of ws 0.25) (fun ctx ->
         Apps.Redis_bench.run_del_get_bandwidth ctx ~keys ~value_bytes
           ~del_fraction:0.7 ~seed:11))
      .H.value
  in
  let plain = run dilos_ra in
  let guided = run (H.Dilos_guided Dilos.Kernel.Readahead) in
  let open Apps.Redis_bench in
  Report.table
    ~header:[ "system"; "DEL rx"; "DEL tx"; "DEL total"; "GET rx"; "GET tx"; "GET total" ]
    [
      [
        "DiLOS";
        Report.f1 plain.del_rx_mb;
        Report.f1 plain.del_tx_mb;
        Report.f1 (plain.del_rx_mb +. plain.del_tx_mb);
        Report.f1 plain.get_rx_mb;
        Report.f1 plain.get_tx_mb;
        Report.f1 (plain.get_rx_mb +. plain.get_tx_mb);
      ];
      [
        "DiLOS guided (app-aware)";
        Report.f1 guided.del_rx_mb;
        Report.f1 guided.del_tx_mb;
        Report.f1 (guided.del_rx_mb +. guided.del_tx_mb);
        Report.f1 guided.get_rx_mb;
        Report.f1 guided.get_tx_mb;
        Report.f1 (guided.get_rx_mb +. guided.get_tx_mb);
      ];
    ];
  let reduction a b = (a -. b) /. a *. 100. in
  Printf.printf
    "\n reduction: DEL %.0f%% (paper ~12%%), GET %.0f%% (paper ~29%%)\n"
    (reduction
       (plain.del_rx_mb +. plain.del_tx_mb)
       (guided.del_rx_mb +. guided.del_tx_mb))
    (reduction
       (plain.get_rx_mb +. plain.get_tx_mb)
       (guided.get_rx_mb +. guided.get_tx_mb));
  Printf.printf "\n bandwidth over time (10ms buckets, MB; DEL phase then GET phase):\n";
  let bucketize series =
    (* Re-bucket the 1ms meter series into 10ms for display. *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (t, rx, tx) ->
        let b = Int64.to_int (Int64.div t (Sim.Time.ms 10)) in
        let cur = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl b) in
        Hashtbl.replace tbl b (fst cur + rx, snd cur + tx))
      series;
    Hashtbl.fold (fun b v acc -> (b, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let show name r =
    Printf.printf "  %-24s" name;
    List.iteri
      (fun i (_, (rx, tx)) ->
        if i < 12 then Printf.printf " %5.1f" (float_of_int (rx + tx) /. 1e6))
      (bucketize r.series);
    print_newline ()
  in
  show "DiLOS" plain;
  show "DiLOS guided" guided

(* ------------------------------------------------------------------ *)
(* Open-loop serving: the saturation knee. Closed-loop redis-benchmark
   (fig10/table4) reports service time and silently throttles its
   offered load to whatever the server sustains — coordinated
   omission. The open-loop harness offers load on the simulated clock
   regardless of server progress, so past the knee the response-time
   tail (queueing included) diverges from the service-time tail while
   achieved throughput flattens at capacity. *)

let serve_keys = 4096
let serve_ws = serve_keys * 4300

let serve_stream ~offered =
  {
    Workload.Stream.keys = serve_keys;
    theta = 0.99;
    read_fraction = 0.95;
    value_size = Workload.Stream.Fixed 4080;
    arrival = Workload.Arrival.Poisson;
    rate_rps = offered;
    seed = 42;
  }

let serve_point sys ~local_mem ~offered ~requests =
  (H.run sys ~local_mem (fun ctx ->
       Apps.Serving.run ctx
         {
           Apps.Serving.stream = serve_stream ~offered;
           requests;
           phases = 1;
           workers = 1;
         }))
    .H.value

let serve_knee () =
  Report.section ~id:"Serving"
    ~title:"Open-loop Zipf serving: offered vs achieved, response vs service tails"
    ~paper:
      [
        "(not a paper figure) zipf 0.99, 95% GET, 4KB values, Poisson";
        "arrivals. Below the knee response ~= service time; past it the";
        "achieved rate flattens at capacity and response p99 diverges";
        "without bound while service p99 stays flat — the signal";
        "closed-loop redis-benchmark structurally cannot report.";
      ];
  let load_points = [ 0.5; 0.8; 0.95; 1.1; 1.5 ] in
  let rows =
    List.concat_map
      (fun (name, sys) ->
        List.concat_map
          (fun frac ->
            let local_mem = local_of serve_ws frac in
            (* Calibrate capacity: saturate the server (every request
               arrives at t=0) and take its achieved rate. *)
            let cal = serve_point sys ~local_mem ~offered:1e9 ~requests:2000 in
            let cap = cal.Apps.Serving.achieved_rps in
            List.map
              (fun mult ->
                let offered =
                  Float.max 1. (Float.round (cap *. mult))
                in
                let r = serve_point sys ~local_mem ~offered ~requests:3000 in
                let resp = r.Apps.Serving.response
                and svc = r.Apps.Serving.service in
                [
                  name;
                  pct frac;
                  Printf.sprintf "%.2f" mult;
                  Report.f0 offered;
                  Report.f0 r.Apps.Serving.achieved_rps;
                  Report.f1 resp.Apps.Redis_bench.p50_us;
                  Report.f1 resp.Apps.Redis_bench.p99_us;
                  Report.f1 svc.Apps.Redis_bench.p99_us;
                  Report.ratio resp.Apps.Redis_bench.p99_us
                    svc.Apps.Redis_bench.p99_us;
                ])
              load_points)
          [ 0.125; 0.5 ])
      [ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]
  in
  Report.table
    ~header:
      [
        "system";
        "local";
        "load/cap";
        "offered(rps)";
        "achieved(rps)";
        "resp p50(us)";
        "resp p99(us)";
        "svc p99(us)";
        "p99 ratio";
      ]
    rows

(* ------------------------------------------------------------------ *)

(* Measured fault-latency attribution from the tracing subsystem
   (companion to the modeled ph_* breakdowns of fig1/fig6): the RDMA
   layer itself reports where each major fault's nanoseconds went, and
   the components tile [first post .. final completion], so
   kernel + queueing + wire + backoff = mean fault latency exactly. *)
let attr () =
  Trace.set_attribution true;
  Report.section ~id:"Attribution"
    ~title:"Measured fault-latency attribution (quicksort, per major fault, us)"
    ~paper:
      [
        "companion to Fig. 9: per-fault latency split into kernel software,";
        "NIC queueing, wire time, and retry backoff, measured in the RDMA";
        "completion path rather than modeled from phase counters.";
      ];
  let qs_n = 500_000 in
  let run_attr sys =
    let boot_snap = ref [] in
    let r =
      H.run sys ~local_mem:(mb 1)
        ~observe:(fun ctx -> boot_snap := Sim.Stats.snapshot ctx.H.stats)
        (fun ctx -> Apps.Quicksort.run ctx ~n:qs_n ~seed:42)
    in
    (r, !boot_snap)
  in
  List.iter
    (fun (name, sys) ->
      let r, boot_snap = run_attr sys in
      let rows =
        List.map
          (fun { Trace.bd_label; bd_count; bd_mean; bd_p50; bd_p99 } ->
            [
              bd_label;
              Report.i bd_count;
              Report.f2 (bd_mean /. 1000.);
              Report.f2 (float_of_int bd_p50 /. 1000.);
              Report.f2 (float_of_int bd_p99 /. 1000.);
            ])
          (Trace.breakdown r.H.run_stats)
      in
      let rows =
        rows
        @ Option.to_list
            (Report.histo_row r.H.run_stats ~label:"= fault total" "fault_ns")
      in
      Printf.printf "\n %s\n" name;
      Report.table
        ~header:[ "component"; "count"; "mean(us)"; "p50(us)"; "p99(us)" ]
        rows;
      Report.phase_delta ~label:"workload counter delta" boot_snap
        r.H.run_stats)
    [ ("DiLOS(ra)", dilos_ra); ("Fastswap", H.Fastswap) ]

let all : (string * string * (unit -> unit)) list =
  [
    ("fig1", "Fastswap fault latency breakdown", fig1);
    ("fig2", "RDMA latency vs object size", fig2);
    ("table1", "Fastswap fault counts (20GB seq read, scaled)", table1);
    ("table2", "sequential r/w throughput", table2);
    ("fig6", "DiLOS vs Fastswap fault breakdown", fig6);
    ("table3", "fault counts during seq read", table3);
    ("fig7a", "quicksort", fig7a);
    ("fig7b", "k-means", fig7b);
    ("fig7c", "snappy compression", fig7c);
    ("fig7d", "snappy decompression", fig7d);
    ("fig8", "DataFrame NYC taxi", fig8);
    ("fig9a", "GAPBS PageRank", fig9a);
    ("fig9b", "GAPBS betweenness centrality", fig9b);
    ("fig10a", "Redis GET 4KB", fig10a);
    ("fig10b", "Redis GET 64KB", fig10b);
    ("fig10c", "Redis GET mixed", fig10c);
    ("fig10d", "Redis LRANGE_100", fig10d);
    ("table4", "Redis tail latency", table4);
    ("attr", "measured fault-latency attribution (trace subsystem)", attr);
    ("fig12", "guided paging bandwidth", fig12);
    ("serve", "open-loop serving saturation knee", serve_knee);
  ]

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out, beyond the paper's
   own figures. *)

let run_dilos_custom ?nic_config ?(huge_pages = true) ~local_mem f =
  let eng = Sim.Engine.create () in
  let server =
    Memnode.Server.create ~eng ~size:(Int64.shift_left 1L 36) ~huge_pages ()
  in
  let k =
    Dilos.Kernel.boot ~eng ~server ?nic_config
      {
        Dilos.Kernel.local_mem_bytes = local_mem;
        cores = 1;
        prefetch = Dilos.Kernel.Readahead;
        guided_paging = false;
        tcp_emulation = false;
      }
  in
  let instance = H.I_dilos k in
  let ctx =
    {
      H.eng;
      instance;
      stats = Dilos.Kernel.stats k;
      bw = Rdma.Fabric.bandwidth (Dilos.Kernel.fabric k);
      mem = (fun ~core -> H.memif_of_instance instance ~core);
      cores = 1;
    }
  in
  let out = ref None in
  Sim.Engine.spawn eng (fun () ->
      out := Some (f ctx);
      Dilos.Kernel.shutdown k);
  Sim.Engine.run eng;
  Option.get !out

(* NVMe-class far memory (§5.1): ~25x the read latency, lower
   effective bandwidth. *)
let nvme_nic =
  {
    Rdma.Nic.default with
    Rdma.Nic.base_read_ns = 75_000;
    base_write_ns = 15_000;
    per_byte_ns = 0.45;
  }

let ablations () =
  Report.section ~id:"Ablation" ~title:"Design-choice ablations (DESIGN.md)"
    ~paper:
      [
        "(not a paper figure) huge pages on the memory node (§5),";
        "NVMe-class far memory (§5.1 discussion), eager-eviction benefit.";
      ];
  let seq ~nic ~huge =
    (run_dilos_custom ?nic_config:nic ~huge_pages:huge ~local_mem:(mb 4)
       (fun ctx -> Apps.Seq.run ctx ~size_bytes:(mb 32) ~mode:Apps.Seq.Read))
      .Apps.Seq.gbps
  in
  let base = seq ~nic:None ~huge:true in
  let no_huge = seq ~nic:None ~huge:false in
  let nvme = seq ~nic:(Some nvme_nic) ~huge:true in
  Report.table
    ~header:[ "configuration"; "seq read GB/s"; "vs baseline" ]
    [
      [ "DiLOS (RDMA, huge pages)"; Report.f2 base; "1.00x" ];
      [ "memory node w/o huge pages"; Report.f2 no_huge; Report.ratio no_huge base ];
      [ "NVMe-class far memory"; Report.f2 nvme; Report.ratio nvme base ];
    ];
  (* Reclaim-stall accounting: how much reclamation leaks into the
     fault path under a write-heavy workload (the paper's design goal
     is zero). *)
  let r =
    run_dilos_custom ~local_mem:(mb 2) (fun ctx ->
        ignore (Apps.Seq.run ctx ~size_bytes:(mb 16) ~mode:Apps.Seq.Write);
        ctx.H.stats)
  in
  Printf.printf
    "\n write-heavy run: %d reclaim stalls, %.1f us total stall time\n\
    \ (background cleaner+reclaimer absorbed the rest of %d evictions)\n"
    (Sim.Stats.get r "reclaim_stalls")
    (float_of_int (Sim.Stats.get r "reclaim_stall_ns") /. 1000.)
    (Sim.Stats.get r "evictions")

let all = all @ [ ("ablation", "design-choice ablations (beyond the paper)", ablations) ]
